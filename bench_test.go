// Benchmarks regenerating, at reduced scale, every table and figure of the
// paper (see DESIGN.md's experiment index) plus micro-benchmarks of the hot
// substrates. Each figure bench runs one representative experiment point per
// iteration and reports the headline metric alongside the timing, so
// `go test -bench=. -benchmem` doubles as a miniature reproduction run:
//
//	BenchmarkFig9ChainLength ... 3.02 chain-rvps
//
// The full-sweep reproduction lives in cmd/nylon-figs.
package nylon

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/traversal"
	"repro/internal/view"
	"repro/internal/wire"
)

// benchCfg is the shared reduced-scale configuration: large enough to show
// the paper's effects, small enough for -bench runs.
func benchCfg(proto exp.Protocol, natPct float64) exp.Config {
	return exp.Config{
		N: 250, Rounds: 80, NATRatio: natPct / 100, Protocol: proto,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: proto != exp.ProtoGeneric,
	}
}

func runPoint(b *testing.B, cfg exp.Config, seed int64) exp.Result {
	b.Helper()
	cfg.Seed = seed
	res, err := exp.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableT1Traversal regenerates the §2.2 traversal decision table
// (experiment T1): all 25 class pairs per iteration.
func BenchmarkTableT1Traversal(b *testing.B) {
	classes := []ident.NATClass{ident.Public, ident.FullCone, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric}
	var sink traversal.Method
	for i := 0; i < b.N; i++ {
		for _, src := range classes {
			for _, dst := range classes {
				sink = traversal.Decide(src, dst)
			}
		}
	}
	_ = sink
}

// BenchmarkFig2BiggestCluster runs the Fig. 2 point that shows partitioning:
// the (rand, healer) baseline at 100% PRC NATs.
func BenchmarkFig2BiggestCluster(b *testing.B) {
	cfg := benchCfg(exp.ProtoGeneric, 100)
	cfg.Mix = exp.NATMix{PRC: 1}
	cfg.Rounds = 150
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
}

// BenchmarkFig3StaleRefs runs the Fig. 3 point at 80% PRC NATs, view 15.
func BenchmarkFig3StaleRefs(b *testing.B) {
	cfg := benchCfg(exp.ProtoGeneric, 80)
	cfg.Mix = exp.NATMix{PRC: 1}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.StaleFraction*100, "stale-%")
}

// BenchmarkFig4Randomness runs the Fig. 4 point at 40% PRC NATs: the natted
// share of usable references (paper: ≈10% despite 40% natted population).
func BenchmarkFig4Randomness(b *testing.B) {
	cfg := benchCfg(exp.ProtoGeneric, 40)
	cfg.Mix = exp.NATMix{PRC: 1}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.NattedNonStale*100, "natted-nonstale-%")
}

// BenchmarkCorrectness runs the §5 correctness point: Nylon at 90% NATs must
// keep the overlay whole and the sample representative.
func BenchmarkCorrectness(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 90)
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
	b.ReportMetric(last.NattedNonStale*100, "natted-nonstale-%")
	b.ReportMetric(last.ChiSquareStat, "chi2-per-dof")
}

// BenchmarkFig7Bandwidth measures Nylon's traffic at 80% NATs (paper: below
// 350 B/s per peer).
func BenchmarkFig7Bandwidth(b *testing.B) {
	var nylon, ref exp.Result
	for i := 0; i < b.N; i++ {
		nylon = runPoint(b, benchCfg(exp.ProtoNylon, 80), int64(i+1))
		ref = runPoint(b, benchCfg(exp.ProtoGeneric, 80), int64(i+1))
	}
	b.ReportMetric(nylon.BytesPerSecAll, "nylon-B/s")
	b.ReportMetric(ref.BytesPerSecAll, "reference-B/s")
}

// BenchmarkFig8LoadBalance measures the public/natted load split under Nylon
// (paper: within 10-20% of each other).
func BenchmarkFig8LoadBalance(b *testing.B) {
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, benchCfg(exp.ProtoNylon, 80), int64(i+1))
	}
	b.ReportMetric(last.BytesPerSecPublic, "public-B/s")
	b.ReportMetric(last.BytesPerSecNatted, "natted-B/s")
}

// BenchmarkFig9ChainLength measures the average RVP chain length at 90% NATs
// (paper: below 4).
func BenchmarkFig9ChainLength(b *testing.B) {
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, benchCfg(exp.ProtoNylon, 90), int64(i+1))
	}
	b.ReportMetric(last.AvgChainLen, "chain-rvps")
}

// BenchmarkFig10Churn removes 50% of the peers mid-run (paper: no partition).
func BenchmarkFig10Churn(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 60)
	cfg.Rounds = 120
	cfg.ChurnAtRound = 30
	cfg.ChurnFraction = 0.5
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
}

// BenchmarkAblationStaticRVP measures the load imbalance of the §4 strawman.
func BenchmarkAblationStaticRVP(b *testing.B) {
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, benchCfg(exp.ProtoStaticRVP, 80), int64(i+1))
	}
	b.ReportMetric(last.BytesPerSecPublic, "public-B/s")
	b.ReportMetric(last.BytesPerSecNatted, "natted-B/s")
}

// BenchmarkAblationARRG measures the cache baseline at 90% PRC NATs.
func BenchmarkAblationARRG(b *testing.B) {
	cfg := benchCfg(exp.ProtoARRG, 90)
	cfg.Mix = exp.NATMix{PRC: 1}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
	b.ReportMetric(last.NattedNonStale*100, "natted-nonstale-%")
}

// BenchmarkAblationHoleTimeout runs Nylon with an aggressive 15 s rule
// lifetime.
func BenchmarkAblationHoleTimeout(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.HoleTimeoutMs = 15_000
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.CompletionRate*100, "completion-%")
}

// BenchmarkAblationPush runs the push-only baseline at 70% PRC NATs.
func BenchmarkAblationPush(b *testing.B) {
	cfg := benchCfg(exp.ProtoGeneric, 70)
	cfg.Mix = exp.NATMix{PRC: 1}
	cfg.PushPull = false
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
}

// BenchmarkAblationEviction runs the A5 churn-recovery point with eviction
// disabled.
func BenchmarkAblationEviction(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 60)
	cfg.EvictUnanswered = false
	cfg.Rounds = 120
	cfg.ChurnAtRound = 30
	cfg.ChurnFraction = 0.8
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkWireMarshal(b *testing.B) {
	msg := &wire.Message{
		Kind: wire.KindRequest,
		Src:  view.Descriptor{ID: 1, Class: ident.Public},
		Dst:  view.Descriptor{ID: 2, Class: ident.RestrictedCone},
		Via:  view.Descriptor{ID: 1},
	}
	for i := 0; i < 8; i++ {
		msg.Entries = append(msg.Entries, wire.ViewEntry{
			Desc: view.Descriptor{ID: ident.NodeID(i + 10), Class: ident.PortRestrictedCone}, RouteTTL: 90_000,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := msg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewExchange measures one full shuffle round on the hot-path
// API (caller-owned send buffer); steady state must be 0 allocs/op.
func BenchmarkViewExchange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := view.New(1, 15)
	for i := 2; i < 17; i++ {
		v.Add(view.Descriptor{ID: ident.NodeID(i), Age: uint32(i)})
	}
	recv := make([]view.Descriptor, 8)
	for i := range recv {
		recv[i] = view.Descriptor{ID: ident.NodeID(100 + i), Age: uint32(i)}
	}
	var sent []view.Descriptor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sent = v.PrepareExchangeInto(view.MergeHealer, rng, sent[:0])
		v.ApplyExchange(view.MergeHealer, recv, sent, rng)
	}
}

func BenchmarkNylonTick(b *testing.B) {
	eng := core.NewNylon(core.Config{
		Self:        view.Descriptor{ID: 1, Addr: ident.Endpoint{IP: 1, Port: 1}, Class: ident.PortRestrictedCone},
		ViewSize:    15,
		Merge:       view.MergeHealer,
		PushPull:    true,
		HoleTimeout: 90_000,
		RNG:         rand.New(rand.NewSource(1)),
	})
	var seeds []view.Descriptor
	for i := 2; i < 17; i++ {
		seeds = append(seeds, view.Descriptor{
			ID: ident.NodeID(i), Addr: ident.Endpoint{IP: ident.IP(i), Port: 1}, Class: ident.RestrictedCone,
		})
	}
	eng.Bootstrap(0, seeds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Keep routes warm so ticks exercise the full path.
		if i%1000 == 0 {
			eng.Bootstrap(int64(i), seeds)
		}
		eng.Tick(int64(i))
	}
}

// BenchmarkSimulation1kPeers runs fully instrumented — metrics registry,
// health accumulators, timing probe — so the tracked wall-time baseline also
// guards the observability layer's overhead (per-shard atomics on the
// datagram path, view-mutation hooks on every shuffle). A hub observes
// exactly one run, hence the fresh hub per iteration.
func BenchmarkSimulation1kPeers(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.N, cfg.Rounds = 1000, 40
	b.ReportAllocs()
	defer reportBytesPerPeer(b, cfg.N)()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Obs = obs.NewHub()
		events += runPoint(b, cfg, int64(i+1)).EventsProcessed
	}
	reportEventsPerSec(b, events)
}

// reportEventsPerSec reports executed simulator events per wall-clock second
// over the benchmark loop — the delivery engine's throughput headline (README
// "Throughput"; scripts/bench_check.sh guards its floor). events is the total
// EventsProcessed across all b.N iterations; EventsProcessed is part of the
// determinism contract, so only the wall clock can move this metric.
func reportEventsPerSec(b *testing.B, events uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/s")
	}
}

// reportBytesPerPeer reports the total bytes allocated per simulated peer
// over the benchmark loop: the deferred completion reads the monotone
// TotalAlloc counter, so GC cannot hide anything. B/peer is the memory
// headline the scale benchmarks track (scripts/bench_check.sh guards it).
func reportBytesPerPeer(b *testing.B, peers int) func() {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	return func() {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N)/float64(peers), "B/peer")
	}
}

// BenchmarkScenarioChurn1k is BenchmarkSimulation1kPeers under a full
// adversity scenario: continuous Poisson churn, a partition/heal cycle, and
// lossy jittered links — the scenario engine's tracked cost. The nil-scenario
// baseline must stay within noise of BenchmarkSimulation1kPeers.
func BenchmarkScenarioChurn1k(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.N, cfg.Rounds = 1000, 40
	cfg.Scenario = &scenario.Scenario{
		Name:  "bench-storm",
		Churn: &scenario.Churn{JoinsPerRound: 3, LeavesPerRound: 3, StartRound: 5},
		Link:  &scenario.Link{JitterMs: 20, Loss: 0.05},
		Events: []scenario.Event{
			{Round: 15, Kind: scenario.KindPartition, Fraction: 0.3, DurationRounds: 10},
		},
	}
	b.ReportAllocs()
	var last exp.Result
	var events uint64
	for i := 0; i < b.N; i++ {
		last = runPoint(b, cfg, int64(i+1))
		events += last.EventsProcessed
	}
	b.ReportMetric(last.BiggestCluster*100, "cluster-%")
	reportEventsPerSec(b, events)
}

// BenchmarkSimulation10kPeers is the paper-scale population (§5: 10,000
// peers) at a reduced round budget — the scale target the hot-path work is
// sized against. Expect seconds per iteration; run with -benchtime 1x.
func BenchmarkSimulation10kPeers(b *testing.B) {
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.N, cfg.Rounds = 10_000, 40
	b.ReportAllocs()
	defer reportBytesPerPeer(b, cfg.N)()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runPoint(b, cfg, int64(i+1)).EventsProcessed
	}
	reportEventsPerSec(b, events)
}

// BenchmarkSimulation10kPeersWorkers sweeps the sharded kernel's worker
// count over the paper-scale run — the README "Scaling" table. Results are
// bit-identical across the sweep (see TestWorkerCountInvariance); only the
// wall clock moves. Skipped under -short; run with -benchtime 1x.
func BenchmarkSimulation10kPeersWorkers(b *testing.B) {
	if testing.Short() {
		b.Skip("worker sweep skipped in -short mode")
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := benchCfg(exp.ProtoNylon, 80)
			cfg.N, cfg.Rounds = 10_000, 40
			cfg.Workers = w
			var events uint64
			for i := 0; i < b.N; i++ {
				events += runPoint(b, cfg, int64(i+1)).EventsProcessed
			}
			reportEventsPerSec(b, events)
		})
	}
}

// BenchmarkSimulation100kPeers is the 10×-paper-scale population the sharded
// kernel exists for: 100,000 peers on 32 shards. One iteration finishes in
// well under a minute per worker-saturated core-set (and in single-digit
// minutes even sequentially). Skipped under -short (the generic CI bench
// smoke); the dedicated CI step runs it explicitly with -benchtime 1x.
func BenchmarkSimulation100kPeers(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-peer run skipped in -short mode")
	}
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.N, cfg.Rounds = 100_000, 20
	cfg.Shards = 32
	b.ReportAllocs()
	defer reportBytesPerPeer(b, cfg.N)()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runPoint(b, cfg, int64(i+1)).EventsProcessed
	}
	reportEventsPerSec(b, events)
}

// BenchmarkSimulation1MPeers is the paper-exceeding scale target of the
// memory-compaction work (DESIGN.md §7): one million peers for 20 rounds,
// which must fit in 8 GB of heap. Expect ~10 minutes per iteration per core;
// run with -benchtime 1x. Skipped under -short. The shard count is lower
// than the 100k benchmark's relative to the population on purpose: each
// shard's descriptor intern table scales with the distinct peers that shard
// hears about (approaching N in a well-mixed overlay), so at 1M peers extra
// shards buy parallelism at a measurable memory price.
func BenchmarkSimulation1MPeers(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-peer run skipped in -short mode")
	}
	cfg := benchCfg(exp.ProtoNylon, 80)
	cfg.N, cfg.Rounds = 1_000_000, 20
	cfg.Shards = 16
	b.ReportAllocs()
	defer reportBytesPerPeer(b, cfg.N)()
	var peak, events uint64
	for i := 0; i < b.N; i++ {
		events += runPoint(b, cfg, int64(i+1)).EventsProcessed
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > peak {
			peak = ms.HeapInuse
		}
	}
	b.ReportMetric(float64(peak)/(1<<30), "heap-GB")
	reportEventsPerSec(b, events)
}
