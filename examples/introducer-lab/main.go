// Introducer-lab: the complete deployable join flow, live. An introducer
// service runs on the in-memory switch; a dozen peers behind assorted NAT
// devices join through it — each one gets STUN-style NAT classification, its
// public mapping, seed peers, and pre-punched holes — then they gossip with
// Nylon until the overlay is mixed.
//
// This is the real-network analogue of what the simulator's bootstrap does
// in one line.
//
// Run with: go run ./examples/introducer-lab
package main

import (
	"fmt"
	"log"
	"time"

	nylon "repro"
)

func main() {
	sw := nylon.NewSwitch(time.Millisecond)

	// The introducer needs three sockets for full NAT classification:
	// primary, same-IP alternate port, and an alternate IP.
	primary := sw.Attach()
	altPort := sw.AttachSibling(primary, 3479)
	altIP := sw.Attach()
	in := nylon.NewIntroducer(nylon.IntroducerConfig{
		Primary: primary, AltPort: altPort, AltIP: altIP,
	})
	defer in.Close()
	fmt.Printf("introducer on %v\n\n", primary.LocalAddr())

	classes := []nylon.NATClass{
		nylon.Public, nylon.RestrictedCone, nylon.PortRestrictedCone,
		nylon.Symmetric, nylon.FullCone,
	}
	var nodes []*nylon.Node
	for i := 1; i <= 12; i++ {
		class := classes[i%len(classes)]
		var tr nylon.Transport
		if class == nylon.Public {
			tr = sw.Attach()
		} else {
			tr, _ = sw.AttachNAT(class, 90*time.Second)
		}

		res, err := nylon.Join(tr, primary.LocalAddr(), nylon.NodeID(i), 500*time.Millisecond)
		if err != nil {
			log.Fatalf("join %d: %v", i, err)
		}
		fmt.Printf("n%-3d behind %-7v classified %-7v mapped %-17v seeds %d\n",
			i, class, res.Class, res.Mapped, len(res.Seeds))
		if res.Class != class {
			log.Fatalf("n%d misclassified: %v != %v", i, res.Class, class)
		}

		node, err := nylon.NewNode(nylon.Config{
			ID:        nylon.NodeID(i),
			Transport: tr,
			Advertise: res.Mapped,
			NAT:       res.Class,
			Bootstrap: res.Seeds,
			ViewSize:  8,
			Period:    25 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		node.Start()
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	fmt.Println("\noverlay after mixing:")
	for _, n := range nodes {
		st := n.Stats()
		fmt.Printf("%-4v view=%-2d shuffles=%-3d punches=%-2d sample:", n.Self().ID, len(n.View()), st.ShufflesCompleted, st.HolePunchesCompleted)
		for _, d := range n.Sample(4) {
			fmt.Printf(" %v", d.ID)
		}
		fmt.Println()
	}
}
