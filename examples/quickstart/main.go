// Quickstart: a 20-node overlay on the in-memory switch — half of it behind
// simulated NATs — gossiping until every node holds a healthy random sample.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	nylon "repro"
	"repro/internal/transport"
)

func main() {
	const (
		numNodes = 20
		viewSize = 8
		period   = 25 * time.Millisecond
	)
	sw := nylon.NewSwitch(time.Millisecond)

	type attachment struct {
		tr  *transport.MemTransport
		adv nylon.Endpoint
	}
	var (
		nodes   []*nylon.Node
		seeds   []nylon.Descriptor
		attachs []attachment
	)
	for i := 1; i <= numNodes; i++ {
		var (
			att   attachment
			class nylon.NATClass
		)
		if i%2 == 0 {
			// Even nodes sit behind port-restricted cone NATs.
			memTr, mapped := sw.AttachNAT(nylon.PortRestrictedCone, 90*time.Second)
			att, class = attachment{memTr, mapped}, nylon.PortRestrictedCone
		} else {
			memTr := sw.Attach()
			att, class = attachment{memTr, memTr.LocalAddr()}, nylon.Public
		}
		boot := lastN(seeds, viewSize)
		// Open join-time NAT holes toward the seeds, as an introducer
		// service would.
		for _, s := range boot {
			for j, prev := range attachs {
				if seeds[j].ID == s.ID {
					sw.OpenHole(att.tr, prev.tr, att.adv, prev.adv)
				}
			}
		}
		node, err := nylon.NewNode(nylon.Config{
			ID:        nylon.NodeID(i),
			Transport: att.tr,
			Advertise: att.adv,
			NAT:       class,
			Bootstrap: boot,
			ViewSize:  viewSize,
			Period:    period,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
		seeds = append(seeds, node.Self())
		attachs = append(attachs, att)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Let the overlay mix for a while.
	time.Sleep(60 * period)

	fmt.Println("== views after mixing ==")
	for _, n := range nodes {
		st := n.Stats()
		fmt.Printf("%-4v %-6v shuffles=%-3d punches=%-3d sample:", n.Self().ID, n.Self().Class, st.ShufflesCompleted, st.HolePunchesCompleted)
		for _, d := range n.Sample(5) {
			fmt.Printf(" %v", d.ID)
		}
		fmt.Println()
	}
}

func lastN(ds []nylon.Descriptor, n int) []nylon.Descriptor {
	if len(ds) > n {
		ds = ds[len(ds)-n:]
	}
	out := make([]nylon.Descriptor, len(ds))
	copy(out, ds)
	return out
}
