// Aggregation: push-pull gossip averaging (Jelasity, Montresor, Babaoglu —
// TOCS 2005, the paper's reference [10]) running on top of the peer sampling
// service. Every node starts with a distinct value; each round it averages
// with one peer drawn from its Nylon sample. With a uniform sampling service
// the variance of the estimates decays exponentially — which makes this a
// live check of sample quality under NATs.
//
// Run with: go run ./examples/aggregation
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	nylon "repro"
)

const (
	numNodes = 24
	viewSize = 8
	period   = 25 * time.Millisecond
)

func main() {
	sw := nylon.NewSwitch(time.Millisecond)
	nodes := make(map[nylon.NodeID]*nylon.Node, numNodes)
	values := make(map[nylon.NodeID]float64, numNodes)
	var seeds []nylon.Descriptor

	for i := 1; i <= numNodes; i++ {
		var (
			tr    nylon.Transport
			adv   nylon.Endpoint
			class nylon.NATClass
		)
		if i > 1 && i%3 == 0 { // a third of the overlay behind PRC NATs
			memTr, mapped := sw.AttachNAT(nylon.PortRestrictedCone, 90*time.Second)
			tr, adv, class = memTr, mapped, nylon.PortRestrictedCone
		} else {
			memTr := sw.Attach()
			tr, adv, class = memTr, memTr.LocalAddr(), nylon.Public
		}
		boot := seeds
		if len(boot) > viewSize {
			boot = boot[len(boot)-viewSize:]
		}
		node, err := nylon.NewNode(nylon.Config{
			ID:        nylon.NodeID(i),
			Transport: tr,
			Advertise: adv,
			NAT:       class,
			Bootstrap: append([]nylon.Descriptor(nil), boot...),
			ViewSize:  viewSize,
			Period:    period,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[node.Self().ID] = node
		seeds = append(seeds, node.Self())
		// Node i contributes the value i, so the true mean is known.
		values[node.Self().ID] = float64(i)
		node.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	trueMean := float64(numNodes+1) / 2
	fmt.Printf("true mean: %.3f\n", trueMean)
	time.Sleep(40 * period) // let the sampling service mix

	fmt.Println("round  max-error   std-dev")
	for round := 1; round <= 24; round++ {
		// One aggregation step: every node averages with one sampled peer.
		for id, node := range nodes {
			sample := node.Sample(1)
			if len(sample) == 0 {
				continue
			}
			peer := sample[0].ID
			avg := (values[id] + values[peer]) / 2
			values[id], values[peer] = avg, avg
		}
		maxErr, sd := errorStats(values, trueMean)
		if round%4 == 0 || maxErr < 1e-3 {
			fmt.Printf("%5d  %9.5f  %8.5f\n", round, maxErr, sd)
		}
		if maxErr < 1e-3 {
			fmt.Println("converged: every node holds the global mean")
			return
		}
		time.Sleep(period)
	}
	maxErr, _ := errorStats(values, trueMean)
	fmt.Printf("stopped with max error %.5f\n", maxErr)
}

func errorStats(values map[nylon.NodeID]float64, mean float64) (maxErr, stdDev float64) {
	var sq float64
	for _, v := range values {
		d := math.Abs(v - mean)
		if d > maxErr {
			maxErr = d
		}
		sq += d * d
	}
	return maxErr, math.Sqrt(sq / float64(len(values)))
}
