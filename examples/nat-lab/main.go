// NAT-lab: a walkthrough of Section 2 of the paper. It prints the traversal
// decision matrix, then verifies each (source, destination) NAT combination
// live: two Nylon nodes behind simulated NAT devices of the given classes,
// introduced through a public rendez-vous node, must complete a shuffle.
//
// Run with: go run ./examples/nat-lab
package main

import (
	"fmt"
	"log"
	"time"

	nylon "repro"
	"repro/internal/ident"
	"repro/internal/transport"
	"repro/internal/traversal"
)

var classes = []nylon.NATClass{nylon.Public, nylon.RestrictedCone, nylon.PortRestrictedCone, nylon.Symmetric}

func main() {
	fmt.Println("== traversal decision matrix (paper §2.2) ==")
	fmt.Printf("%-8s", "src\\dst")
	for _, dst := range classes {
		fmt.Printf(" %-22s", dst)
	}
	fmt.Println()
	for _, src := range classes {
		fmt.Printf("%-8s", src)
		for _, dst := range classes {
			fmt.Printf(" %-22s", traversal.Decide(src, dst))
		}
		fmt.Println()
	}

	fmt.Println("\n== live verification over the in-memory switch ==")
	for _, src := range classes {
		for _, dst := range classes {
			ok := tryExchange(src, dst)
			status := "ok"
			if !ok {
				status = "FAILED"
			}
			fmt.Printf("%-7s -> %-7s via %-22s %s\n", src, dst, traversal.Decide(src, dst), status)
		}
	}
}

// tryExchange wires rendez-vous -> src -> dst so that src knows dst only
// through the rendez-vous peer, then checks that src completes a shuffle
// with dst.
func tryExchange(srcClass, dstClass nylon.NATClass) bool {
	sw := nylon.NewSwitch(time.Millisecond)

	attach := func(class nylon.NATClass) (*transport.MemTransport, nylon.Endpoint) {
		if class == nylon.Public {
			tr := sw.Attach()
			return tr, tr.LocalAddr()
		}
		return sw.AttachNAT(class, 90*time.Second)
	}
	rvpTr, rvpAdv := attach(nylon.Public)
	srcTr, srcAdv := attach(srcClass)
	dstTr, dstAdv := attach(dstClass)

	// The introducer opened holes between the RVP and both peers (they
	// joined through it).
	sw.OpenHole(srcTr, rvpTr, srcAdv, rvpAdv)
	sw.OpenHole(dstTr, rvpTr, dstAdv, rvpAdv)

	newNode := func(id uint64, tr nylon.Transport, adv nylon.Endpoint, class nylon.NATClass, boot []nylon.Descriptor) *nylon.Node {
		n, err := nylon.NewNode(nylon.Config{
			ID: nylon.NodeID(id), Transport: tr, Advertise: adv, NAT: class,
			Bootstrap: boot, ViewSize: 4, Period: 15 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	rvp := newNode(1, rvpTr, rvpAdv, nylon.Public, nil)
	dst := newNode(3, dstTr, dstAdv, dstClass, []nylon.Descriptor{rvp.Self()})
	src := newNode(2, srcTr, srcAdv, srcClass, []nylon.Descriptor{rvp.Self()})

	for _, n := range []*nylon.Node{rvp, dst, src} {
		n.Start()
	}
	defer func() {
		for _, n := range []*nylon.Node{rvp, dst, src} {
			n.Close()
		}
	}()

	// Wait until src's view contains dst (learned via the RVP) and a
	// shuffle between them completed: dst must appear in src's view AND
	// src must have merged a response from somebody beyond the RVP.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if viewHas(dst, src.Self().ID) && viewHas(src, dst.Self().ID) {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

func viewHas(n *nylon.Node, id ident.NodeID) bool {
	for _, d := range n.View() {
		if d.ID == id {
			return true
		}
	}
	return false
}
