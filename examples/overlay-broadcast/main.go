// Overlay-broadcast: epidemic dissemination on top of the peer sampling
// service — the canonical application the gossip literature builds on random
// samples (rumor mongering / bimodal multicast style).
//
// A 30-node overlay (40% natted) runs Nylon; once the views have mixed, node
// 1 learns a rumor, and every period each infected node pushes it to a few
// peers drawn from its sample. The program reports the infection curve.
//
// Run with: go run ./examples/overlay-broadcast
package main

import (
	"fmt"
	"log"
	"time"

	nylon "repro"
)

const (
	numNodes = 30
	viewSize = 8
	fanout   = 2
	period   = 25 * time.Millisecond
)

func main() {
	sw := nylon.NewSwitch(time.Millisecond)
	nodes := make(map[nylon.NodeID]*nylon.Node, numNodes)
	var seeds []nylon.Descriptor
	for i := 1; i <= numNodes; i++ {
		var (
			tr    nylon.Transport
			adv   nylon.Endpoint
			class nylon.NATClass
		)
		if i > 1 && i%5 < 2 { // ~40% behind restricted-cone NATs; node 1 is
			// public so the overlay has a reachable first seed
			memTr, mapped := sw.AttachNAT(nylon.RestrictedCone, 90*time.Second)
			tr, adv, class = memTr, mapped, nylon.RestrictedCone
		} else {
			memTr := sw.Attach()
			tr, adv, class = memTr, memTr.LocalAddr(), nylon.Public
		}
		boot := seeds
		if len(boot) > viewSize {
			boot = boot[len(boot)-viewSize:]
		}
		node, err := nylon.NewNode(nylon.Config{
			ID:        nylon.NodeID(i),
			Transport: tr,
			Advertise: adv,
			NAT:       class,
			Bootstrap: append([]nylon.Descriptor(nil), boot...),
			ViewSize:  viewSize,
			Period:    period,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[node.Self().ID] = node
		seeds = append(seeds, node.Self())
		node.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Let the sampling service mix.
	time.Sleep(40 * period)

	// Epidemic push over the sampled peers.
	infected := map[nylon.NodeID]bool{1: true}
	fmt.Println("round  infected")
	for round := 0; len(infected) < numNodes && round < 40; round++ {
		newly := make([]nylon.NodeID, 0)
		for id := range infected {
			for _, peer := range nodes[id].Sample(fanout) {
				if !infected[peer.ID] {
					newly = append(newly, peer.ID)
				}
			}
		}
		for _, id := range newly {
			infected[id] = true
		}
		fmt.Printf("%5d  %d/%d\n", round, len(infected), numNodes)
		time.Sleep(period)
	}
	if len(infected) == numNodes {
		fmt.Println("rumor reached every node")
	} else {
		fmt.Printf("rumor stalled at %d/%d nodes\n", len(infected), numNodes)
	}
}
