// Churn-lab: the paper's Figure 10 experiment in miniature — remove half the
// overlay at once and watch Nylon re-knit itself, while the NAT-oblivious
// baseline falls apart.
//
// Run with: go run ./examples/churn-lab
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/view"
)

func main() {
	const (
		peers  = 600
		rounds = 200
		natPct = 60
	)
	fmt.Printf("%d peers, %d%% natted, removing varying fractions at round %d\n\n",
		peers, natPct, rounds/4)
	fmt.Println("departed%   nylon-cluster%   baseline-cluster%")
	for _, dep := range []float64{0.3, 0.5, 0.7, 0.8} {
		var clusters [2]float64
		for i, proto := range []exp.Protocol{exp.ProtoNylon, exp.ProtoGeneric} {
			res, err := exp.Run(exp.Config{
				N:               peers,
				Rounds:          rounds,
				NATRatio:        natPct / 100.0,
				Protocol:        proto,
				Selection:       view.SelectRand,
				Merge:           view.MergeHealer,
				PushPull:        true,
				ChurnAtRound:    rounds / 4,
				ChurnFraction:   dep,
				Seed:            7,
				EvictUnanswered: proto == exp.ProtoNylon,
			})
			if err != nil {
				log.Fatal(err)
			}
			clusters[i] = res.BiggestCluster * 100
		}
		fmt.Printf("%8.0f%%   %13.1f%%   %16.1f%%\n", dep*100, clusters[0], clusters[1])
	}

	// Healing curve: how Nylon's overlay knits itself back together after
	// losing 70% of its peers at once.
	fmt.Println("\nnylon healing curve after 70% departures (cluster% / stale% per round):")
	res, err := exp.Run(exp.Config{
		N:                 peers,
		Rounds:            rounds,
		NATRatio:          natPct / 100.0,
		Protocol:          exp.ProtoNylon,
		Selection:         view.SelectRand,
		Merge:             view.MergeHealer,
		PushPull:          true,
		ChurnAtRound:      rounds / 4,
		ChurnFraction:     0.7,
		Seed:              7,
		EvictUnanswered:   true,
		SampleEveryRounds: rounds / 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range res.Series {
		fmt.Printf("  round %4d: cluster %6.1f%%  stale %5.1f%%  alive %d\n",
			pt.Round, pt.BiggestCluster*100, pt.StaleFraction*100, pt.AlivePeers)
	}
}
