// Churn-lab: the paper's Figure 10 experiment in miniature, rebuilt on the
// scenario engine. Part 1 removes a growing fraction of the overlay at once
// (a mass_leave event) and compares Nylon against the NAT-oblivious
// baseline. Part 2 runs a living overlay — continuous Poisson churn with a
// mid-run flash crowd — and prints Nylon's health series through it.
//
// Run with: go run ./examples/churn-lab
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/view"
)

func main() {
	const (
		peers  = 600
		rounds = 200
		natPct = 60
	)
	baseCfg := func(proto exp.Protocol, sc *scenario.Scenario) exp.Config {
		return exp.Config{
			N:               peers,
			Rounds:          rounds,
			NATRatio:        natPct / 100.0,
			Protocol:        proto,
			Selection:       view.SelectRand,
			Merge:           view.MergeHealer,
			PushPull:        true,
			Seed:            7,
			EvictUnanswered: proto == exp.ProtoNylon,
			Scenario:        sc,
		}
	}

	fmt.Printf("%d peers, %d%% natted, removing varying fractions at round %d\n\n",
		peers, natPct, rounds/4)
	fmt.Println("departed%   nylon-cluster%   baseline-cluster%")
	for _, dep := range []float64{0.3, 0.5, 0.7, 0.8} {
		sc := &scenario.Scenario{
			Name:   "mass-leave",
			Events: []scenario.Event{{Round: rounds / 4, Kind: scenario.KindMassLeave, Fraction: dep}},
		}
		var clusters [2]float64
		for i, proto := range []exp.Protocol{exp.ProtoNylon, exp.ProtoGeneric} {
			res, err := exp.Run(baseCfg(proto, sc))
			if err != nil {
				log.Fatal(err)
			}
			clusters[i] = res.BiggestCluster * 100
		}
		fmt.Printf("%8.0f%%   %13.1f%%   %16.1f%%\n", dep*100, clusters[0], clusters[1])
	}

	// A living overlay: every round a Poisson-distributed handful of peers
	// joins and leaves, and at round 100 a flash crowd half the size of
	// the original population arrives at once.
	fmt.Println("\nnylon under continuous churn (λ=3 joins+leaves/round) with a flash crowd at round 100:")
	living := &scenario.Scenario{
		Name:  "living-overlay",
		Churn: &scenario.Churn{JoinsPerRound: 3, LeavesPerRound: 3, StartRound: 10},
		Events: []scenario.Event{
			{Round: 100, Kind: scenario.KindFlashCrowd, Fraction: 0.5},
		},
	}
	cfg := baseCfg(exp.ProtoNylon, living)
	cfg.SampleEveryRounds = rounds / 10
	res, err := exp.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range res.Series {
		fmt.Printf("  round %4d: cluster %6.1f%%  stale %5.1f%%  alive %4d  (+%d/-%d cumulative)\n",
			pt.Round, pt.BiggestCluster*100, pt.StaleFraction*100, pt.AlivePeers, pt.Joins, pt.Leaves)
	}
	fmt.Printf("  total: %d joined, %d left, %d peers ever; worst cluster %.1f%% at round %d\n",
		res.Scenario.Joins, res.Scenario.Leaves, res.TotalPeers,
		res.Recovery.WorstCluster*100, res.Recovery.WorstRound)
}
