package nylon

import (
	"time"

	"repro/internal/boot"
)

// JoinResult is the outcome of a bootstrap handshake: the peer's observed
// public mapping, its inferred NAT class, and an initial view of seed peers
// whose NAT holes the introducer pre-punched.
type JoinResult = boot.JoinResult

// Join runs the bootstrap handshake against an introducer: STUN-style
// binding probes discover the caller's public mapping and NAT class
// (RFC 3489 decision tree), then registration returns seed peers and
// coordinates the first hole punches. The results map directly onto
// Config.Advertise, Config.NAT and Config.Bootstrap:
//
//	tr, _ := nylon.ListenUDP(":0")
//	res, err := nylon.Join(tr, introducerAddr, 42, 2*time.Second)
//	node, _ := nylon.NewNode(nylon.Config{
//		ID: 42, Transport: tr,
//		Advertise: res.Mapped, NAT: res.Class, Bootstrap: res.Seeds,
//	})
func Join(tr Transport, introducer Endpoint, id NodeID, timeout time.Duration) (JoinResult, error) {
	return boot.Join(tr, introducer, id, boot.JoinConfig{Timeout: timeout})
}

// Introducer is a bootstrap server: a public rendez-vous that classifies
// joiners' NATs, hands out seed peers, and coordinates join-time hole
// punching.
type Introducer = boot.Introducer

// IntroducerConfig configures an Introducer; see NewIntroducer.
type IntroducerConfig = boot.IntroducerConfig

// NewIntroducer starts a bootstrap server over the given sockets. Primary is
// required; AltPort (same IP, second port) and AltIP (second IP) enable full
// NAT classification — without them, cone classes degrade conservatively.
func NewIntroducer(cfg IntroducerConfig) *Introducer { return boot.NewIntroducer(cfg) }
