package nylon

import (
	"testing"
	"time"
)

// startCluster launches n public nodes on one in-memory switch, each
// bootstrapped with the previous nodes (up to viewSize).
func startCluster(t *testing.T, n int) []*Node {
	t.Helper()
	sw := NewSwitch(time.Millisecond)
	nodes := make([]*Node, 0, n)
	var seeds []Descriptor
	for i := 1; i <= n; i++ {
		tr := sw.Attach()
		boot := make([]Descriptor, len(seeds))
		copy(boot, seeds)
		node, err := NewNode(Config{
			ID:        NodeID(i),
			Transport: tr,
			Advertise: tr.LocalAddr(),
			Bootstrap: boot,
			ViewSize:  8,
			Period:    20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		seeds = append(seeds, node.Self())
		if len(seeds) > 8 {
			seeds = seeds[1:]
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

func TestNodeConfigValidation(t *testing.T) {
	sw := NewSwitch(0)
	tr := sw.Attach()
	defer tr.Close()
	cases := []Config{
		{Transport: tr, Advertise: tr.LocalAddr()},                           // no ID
		{ID: 1, Advertise: tr.LocalAddr()},                                   // no transport
		{ID: 1, Transport: tr},                                               // no advertise
		{ID: 1, Transport: tr, Advertise: tr.LocalAddr(), NAT: NATClass(99)}, // bad class
	}
	for i, cfg := range cases {
		if _, err := NewNode(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNodeGossipConverges(t *testing.T) {
	nodes := startCluster(t, 12)
	deadline := time.Now().Add(5 * time.Second)
	for {
		full := 0
		for _, n := range nodes {
			if len(n.View()) >= 6 {
				full++
			}
		}
		if full == len(nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("views did not fill: %d/%d", full, len(nodes))
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Every node completed shuffles and views hold no self references.
	for _, n := range nodes {
		st := n.Stats()
		if st.ShufflesInitiated == 0 {
			t.Errorf("node %v never initiated", n.Self().ID)
		}
		for _, d := range n.View() {
			if d.ID == n.Self().ID {
				t.Errorf("node %v holds itself in view", n.Self().ID)
			}
		}
	}
}

func TestNodeSample(t *testing.T) {
	nodes := startCluster(t, 6)
	time.Sleep(200 * time.Millisecond)
	s := nodes[len(nodes)-1].Sample(3)
	if len(s) == 0 {
		t.Fatal("empty sample")
	}
	if len(s) > 3 {
		t.Errorf("Sample(3) returned %d", len(s))
	}
	// Sample larger than view returns the whole view.
	all := nodes[len(nodes)-1].Sample(1000)
	if len(all) != len(nodes[len(nodes)-1].View()) {
		t.Errorf("oversized sample = %d entries", len(all))
	}
}

func TestNodeThroughNAT(t *testing.T) {
	sw := NewSwitch(time.Millisecond)
	pubTr := sw.Attach()
	pub, err := NewNode(Config{
		ID: 1, Transport: pubTr, Advertise: pubTr.LocalAddr(),
		ViewSize: 4, Period: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	natTr, adv := sw.AttachNAT(PortRestrictedCone, time.Minute)
	natted, err := NewNode(Config{
		ID: 2, Transport: natTr, Advertise: adv, NAT: PortRestrictedCone,
		Bootstrap: []Descriptor{pub.Self()},
		ViewSize:  4, Period: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub.Start()
	natted.Start()
	defer pub.Close()
	defer natted.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// The public node must learn the natted one through its shuffles,
		// and the natted node must complete exchanges.
		if natted.Stats().ShufflesCompleted > 0 {
			found := false
			for _, d := range pub.View() {
				if d.ID == 2 {
					found = true
				}
			}
			if found {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no exchange through NAT: natted=%+v pubView=%v", natted.Stats(), pub.View())
}

func TestNodeOverUDP(t *testing.T) {
	trA, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNode(Config{
		ID: 1, Transport: trA, Advertise: trA.LocalAddr(),
		ViewSize: 4, Period: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	trB, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{
		ID: 2, Transport: trB, Advertise: trB.LocalAddr(),
		Bootstrap: []Descriptor{a.Self()},
		ViewSize:  4, Period: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	defer a.Close()
	defer b.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().ShufflesCompleted > 0 && len(a.View()) > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("UDP nodes never exchanged views")
}

func TestNodeCloseIdempotent(t *testing.T) {
	sw := NewSwitch(0)
	tr := sw.Attach()
	n, err := NewNode(Config{ID: 1, Transport: tr, Advertise: tr.LocalAddr()})
	if err != nil {
		t.Fatal(err)
	}
	// Reads work before Start.
	if got := n.View(); len(got) != 0 {
		t.Errorf("pre-start view = %v", got)
	}
	n.Start()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	// Reads still work after Close.
	_ = n.View()
	_ = n.Stats()
}

func TestNodeDefaults(t *testing.T) {
	cfg := Config{ID: 7}.withDefaults()
	if cfg.ViewSize != 15 || cfg.Period != 5*time.Second || cfg.HoleTimeout != 90*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Merge != MergeHealer || cfg.Selection != SelectRand {
		t.Errorf("policy defaults = %v/%v", cfg.Selection, cfg.Merge)
	}
	if cfg.Seed == 0 {
		t.Error("seed not derived")
	}
}
