// Package nylon is a NAT-resilient gossip peer-sampling library, a faithful
// reproduction of "NAT-resilient Gossip Peer Sampling" (Kermarrec, Pace,
// Quéma, Schiavoni — ICDCS 2009).
//
// Gossip peer sampling gives every peer a small, continuously-refreshed
// random sample of a large overlay. Classic protocols assume any peer can
// message any other; NAT devices break that assumption for most of the
// Internet's edge. Nylon repairs it with reactive hole punching over chains
// of rendez-vous peers: whenever two peers shuffle views they become
// rendez-vous points for each other, and every view entry travels with the
// identity of the peer that supplied it, so a relay path to any view entry
// always exists.
//
// The package offers two ways in:
//
//   - Node runs the protocol in real time over a Transport (in-memory switch
//     or UDP), for applications that need a peer sampling service.
//   - The cmd/nylon-sim and cmd/nylon-figs tools (backed by the internal
//     discrete-event simulator) reproduce every figure of the paper.
//
// A minimal deployment:
//
//	tr, _ := nylon.ListenUDP(":9000")
//	node, _ := nylon.NewNode(nylon.Config{
//		ID:        1,
//		Transport: tr,
//		Advertise: tr.LocalAddr(),
//		Bootstrap: seeds, // descriptors from your introducer
//	})
//	node.Start()
//	defer node.Close()
//	peers := node.Sample(5) // ≈ uniform random peers, NATs notwithstanding
package nylon

import (
	"time"

	"repro/internal/ident"
	"repro/internal/transport"
	"repro/internal/view"
)

// Core identity types, aliased from the internal packages so library users
// can construct and inspect them directly.
type (
	// NodeID uniquely identifies a peer.
	NodeID = ident.NodeID
	// IP is an IPv4 address.
	IP = ident.IP
	// Endpoint is an IP:port transport address.
	Endpoint = ident.Endpoint
	// NATClass is a peer's connectivity class.
	NATClass = ident.NATClass
	// Descriptor describes a peer: ID, contact endpoint, NAT class, age.
	Descriptor = view.Descriptor
	// Transport carries protocol datagrams.
	Transport = transport.Transport
	// Packet is a received datagram.
	Packet = transport.Packet
)

// NAT classes (see the paper's Section 2.1).
const (
	Public             = ident.Public
	FullCone           = ident.FullCone
	RestrictedCone     = ident.RestrictedCone
	PortRestrictedCone = ident.PortRestrictedCone
	Symmetric          = ident.Symmetric
)

// Selection and merge policies of the generic gossip framework (Section 3).
type (
	// Selection picks the shuffle target.
	Selection = view.Selection
	// Merge truncates the view after a shuffle.
	Merge = view.Merge
)

// Policy values.
const (
	SelectRand   = view.SelectRand
	SelectTail   = view.SelectTail
	MergeBlind   = view.MergeBlind
	MergeHealer  = view.MergeHealer
	MergeSwapper = view.MergeSwapper
)

// ListenUDP opens a UDP transport on addr ("ip:port", ":0" for any port).
func ListenUDP(addr string) (*transport.UDPTransport, error) {
	return transport.ListenUDP(addr)
}

// NewSwitch creates an in-memory datagram network for tests, examples and
// NAT labs; attach transports with Attach or AttachNAT.
func NewSwitch(latency time.Duration) *transport.Switch {
	return transport.NewSwitch(latency)
}

// ParseEndpoint parses "a.b.c.d:port".
func ParseEndpoint(s string) (Endpoint, error) { return ident.ParseEndpoint(s) }

// ParseNATClass parses "public", "fc", "rc", "prc" or "sym".
func ParseNATClass(s string) (NATClass, error) { return ident.ParseNATClass(s) }
