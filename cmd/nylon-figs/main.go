// Command nylon-figs regenerates every table and figure of the paper's
// evaluation (Figures 2-4, 7-10, the §5 correctness checks) plus the
// ablations documented in DESIGN.md.
//
// Laptop-scale defaults finish in minutes; pass -n 10000 -rounds 2000
// -seeds 30 to match the paper's setup exactly (hours of CPU).
//
// Usage:
//
//	nylon-figs                 # all figures, default scale
//	nylon-figs -fig 9          # just Figure 9
//	nylon-figs -fig 2 -csv     # CSV instead of aligned text
//	nylon-figs -n 10000 -rounds 2000 -seeds 30 -fig 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: "+strings.Join(exp.FigureOrder, ", ")+" or 'all'")
		n       = flag.Int("n", 600, "number of peers (paper: 10000)")
		rounds  = flag.Int("rounds", 210, "shuffling rounds to simulate (paper: ~2000 for churn)")
		seeds   = flag.Int("seeds", 3, "number of seeds to average (paper: 30)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		workers = flag.Int("workers", 0, "parallel simulation runs (0 = one per core; results are identical for any value)")
		http    = flag.String("http", "", "serve the live ops endpoint (/debug/pprof for profiling long figure runs) on this address")
	)
	flag.Parse()

	if *http != "" {
		hub := obs.NewHub()
		hub.EnsureRegistry()
		srv, err := obs.Serve(*http, hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nylon-figs:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}

	params := exp.Params{N: *n, Rounds: *rounds, Seeds: exp.SeedList(*seeds), Workers: *workers}

	ids := exp.FigureOrder
	if *fig != "all" {
		if _, ok := exp.Figures[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "nylon-figs: unknown figure %q (have %s)\n", *fig, strings.Join(exp.FigureOrder, ", "))
			os.Exit(2)
		}
		ids = []string{*fig}
	}
	for _, id := range ids {
		tables, err := exp.Figures[id](params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nylon-figs: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
}
