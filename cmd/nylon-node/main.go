// Command nylon-node runs a live Nylon peer over UDP and periodically prints
// its view — a minimal deployable peer-sampling service.
//
// Start a first (public) node:
//
//	nylon-node -id 1 -listen :9001
//
// Join from elsewhere (the bootstrap string is id@ip:port/class):
//
//	nylon-node -id 2 -listen :9002 -bootstrap 1@192.0.2.10:9001/public
//
// Natted peers pass their STUN-discovered mapping and class:
//
//	nylon-node -id 3 -listen :9003 -advertise 198.51.100.7:41002 -nat prc \
//	           -bootstrap 1@192.0.2.10:9001/public
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	nylon "repro"
	"repro/internal/obs"
)

func main() {
	var (
		id        = flag.Uint64("id", 0, "node ID (required, unique)")
		listen    = flag.String("listen", ":9000", "UDP listen address")
		advertise = flag.String("advertise", "", "advertised endpoint (default: the listen address)")
		natClass  = flag.String("nat", "public", "own NAT class: public, fc, rc, prc, sym")
		bootstrap = flag.String("bootstrap", "", "comma-separated seeds: id@ip:port/class")
		join      = flag.String("join", "", "introducer address; replaces -advertise/-nat/-bootstrap")
		period    = flag.Duration("period", 5*time.Second, "shuffling period")
		viewSize  = flag.Int("view", 15, "view size")
		report    = flag.Duration("report", 10*time.Second, "view report interval")
		httpAddr  = flag.String("http", "", "serve the live ops endpoint (/metrics, /debug/vars, /debug/pprof) on this address")
	)
	flag.Parse()
	if *id == 0 {
		fatal(fmt.Errorf("-id is required"))
	}

	tr, err := nylon.ListenUDP(*listen)
	if err != nil {
		fatal(err)
	}
	adv := tr.LocalAddr()
	if *advertise != "" {
		if adv, err = nylon.ParseEndpoint(*advertise); err != nil {
			fatal(err)
		}
	}
	class, err := nylon.ParseNATClass(*natClass)
	if err != nil {
		fatal(err)
	}
	seeds, err := parseBootstrap(*bootstrap)
	if err != nil {
		fatal(err)
	}
	if *join != "" {
		introducer, err := nylon.ParseEndpoint(*join)
		if err != nil {
			fatal(err)
		}
		res, err := nylon.Join(tr, introducer, nylon.NodeID(*id), 2*time.Second)
		if err != nil {
			fatal(err)
		}
		adv, class, seeds = res.Mapped, res.Class, res.Seeds
		fmt.Printf("joined via %v: mapped %v, class %v, %d seeds\n", introducer, adv, class, len(seeds))
	}

	node, err := nylon.NewNode(nylon.Config{
		ID:        nylon.NodeID(*id),
		Transport: tr,
		Advertise: adv,
		NAT:       class,
		Bootstrap: seeds,
		ViewSize:  *viewSize,
		Period:    *period,
	})
	if err != nil {
		fatal(err)
	}
	node.Start()
	defer node.Close()
	fmt.Printf("nylon-node %v listening on %v, advertising %v (%v), %d seeds\n",
		node.Self().ID, tr.LocalAddr(), adv, class, len(seeds))

	var gShuffles, gCompleted, gPunches, gView *obs.Gauge
	if *httpAddr != "" {
		hub := obs.NewHub()
		reg := hub.EnsureRegistry()
		gShuffles = reg.Gauge("nylon_node_shuffles_initiated", "shuffles this node initiated")
		gCompleted = reg.Gauge("nylon_node_shuffles_completed", "shuffles that completed")
		gPunches = reg.Gauge("nylon_node_hole_punches_completed", "NAT hole punches completed")
		gView = reg.Gauge("nylon_node_view_size", "current partial view size")
		srv, err := obs.Serve(*httpAddr, hub)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := node.Stats()
			v := node.View()
			if gShuffles != nil {
				gShuffles.Set(float64(st.ShufflesInitiated))
				gCompleted.Set(float64(st.ShufflesCompleted))
				gPunches.Set(float64(st.HolePunchesCompleted))
				gView.Set(float64(len(v)))
			}
			fmt.Printf("[%s] shuffles=%d completed=%d punches=%d view:\n",
				time.Now().Format(time.TimeOnly), st.ShufflesInitiated, st.ShufflesCompleted, st.HolePunchesCompleted)
			for _, d := range v {
				fmt.Printf("  %v\n", d)
			}
		case <-sig:
			fmt.Println("shutting down")
			return
		}
	}
}

// parseBootstrap parses "id@ip:port/class" entries separated by commas.
func parseBootstrap(s string) ([]nylon.Descriptor, error) {
	if s == "" {
		return nil, nil
	}
	var out []nylon.Descriptor
	for _, part := range strings.Split(s, ",") {
		at := strings.IndexByte(part, '@')
		slash := strings.LastIndexByte(part, '/')
		if at < 0 || slash < at {
			return nil, fmt.Errorf("bootstrap entry %q not of form id@ip:port/class", part)
		}
		id, err := strconv.ParseUint(part[:at], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bootstrap entry %q: bad id: %v", part, err)
		}
		ep, err := nylon.ParseEndpoint(part[at+1 : slash])
		if err != nil {
			return nil, fmt.Errorf("bootstrap entry %q: %v", part, err)
		}
		class, err := nylon.ParseNATClass(part[slash+1:])
		if err != nil {
			return nil, fmt.Errorf("bootstrap entry %q: %v", part, err)
		}
		out = append(out, nylon.Descriptor{ID: nylon.NodeID(id), Addr: ep, Class: class})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-node:", err)
	os.Exit(1)
}
