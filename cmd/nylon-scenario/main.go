// Command nylon-scenario runs a simulation under a declarative environment
// scenario (JSON, see internal/scenario and the corpus under
// examples/scenario-lab/) and emits a per-round health series plus a final
// summary. Runs are seed-deterministic: the same (flags, scenario file,
// seed) always produce the same output.
//
// Example — the storm scenario at 1,000 peers:
//
//	nylon-scenario -f examples/scenario-lab/storm.json -n 1000 -rounds 120
//
// The series is tab-separated (round, alive, cluster%, stale%, cumulative
// joins/leaves) so it pipes straight into cut/awk/gnuplot. With a Byzantine
// cohort — from the file's "adversaries" block or the -adversary flags —
// the series gains eclipse%/colluder% columns and the summary an attack
// block (see internal/adversary and DESIGN.md §8).
//
// Long runs survive interruptions: -checkpoint DIR snapshots the world every
// -checkpoint-every rounds (and at the next barrier after SIGINT/SIGTERM),
// and -resume FILE continues bit-identically. Pass -f together with -resume
// to branch: the restored world replays under the new scenario from the
// resume round on ("what if the adversary fraction doubled at round 400?"):
//
//	nylon-scenario -f storm.json -rounds 600 -checkpoint /tmp/ck -checkpoint-every 100
//	nylon-scenario -resume /tmp/ck/round-00000400.snap -f storm-worse.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/view"
)

func main() {
	var (
		file      = flag.String("f", "", "scenario JSON file (required)")
		n         = flag.Int("n", 1000, "initial number of peers")
		natPct    = flag.Float64("nat", 80, "percentage of natted peers")
		viewSize  = flag.Int("view", 15, "view size")
		rounds    = flag.Int("rounds", 120, "shuffling rounds")
		seed      = flag.Int64("seed", 1, "random seed")
		protocol  = flag.String("protocol", "nylon", "protocol: nylon, generic, arrg, static-rvp")
		selection = flag.String("selection", "rand", "target selection: rand, tail")
		merge     = flag.String("merge", "healer", "view merge: blind, healer, swapper")
		push      = flag.Bool("push", false, "push-only propagation (default push/pull)")
		every     = flag.Int("every", 0, "sample the health series every N rounds (0 = rounds/20)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (results are identical for any value)")
		adv       = flag.String("adversary", "", "inject an adversary cohort: poison-view, lying-rvp, selective-drop, free-ride")
		advPct    = flag.Float64("adversary-pct", 20, "percentage of peers assigned to the -adversary cohort")
		advFrom   = flag.Int("adversary-from", 0, "round at which the -adversary cohort activates")
		httpAddr  = flag.String("http", "", "serve the live ops endpoint (/metrics, /debug/vars, /debug/pprof) on this address")
		metrics   = flag.Bool("metrics", false, "print the kernel phase-timing and overlay-health table at the end of the run")
		metricsJS = flag.String("metrics-json", "", "write the full metrics document to this file as JSON")
		progress  = flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
		verify    = flag.Bool("verify-samples", false, "cross-check every series sample against the legacy full-copy sweep and the health accumulators (slow; panics on divergence)")

		traceOn  = flag.Bool("trace", false, "record network events (sends, deliveries, drops) in per-shard rings; tracing never perturbs the run")
		traceOut = flag.String("trace-out", "", "write the merged trace to this file as JSON lines (implies -trace; inspect with nylon-trace)")
		traceCap = flag.Int("trace-cap", 4096, "trace ring capacity: keep the last N events per shard")

		flightDir     = flag.String("flight", "", "arm the flight recorder: write a forensic bundle (trace tail, health, kernel timing, drops) to this directory when a trigger fires")
		flightStall   = flag.Int("flight-stall", 0, "recovery-stall trigger: fire after N consecutive samples below -flight-stall-below (0 = default 10 when -flight is set and no other trigger is armed)")
		flightStallLo = flag.Float64("flight-stall-below", 0.95, "cluster fraction below which a sample counts as stalled")
		flightEclipse = flag.Float64("flight-eclipse", 0, "eclipse trigger: fire when the eclipsed honest fraction reaches this (0 = off)")
		flightCluster = flag.Float64("flight-cluster", 0, "collapse trigger: fire when the biggest-cluster fraction drops below this (0 = off)")
		flightLeak    = flag.Bool("flight-leak", false, "pool-leak trigger: run the wire message-pool leak check at every sample and fire on imbalance")

		ckDir   = flag.String("checkpoint", "", "write crash-survivable world snapshots into this directory; SIGINT/SIGTERM checkpoints at the next round barrier and exits")
		ckEvery = flag.Int("checkpoint-every", 0, "with -checkpoint, also snapshot every N rounds (0 = only on signal)")
		resume  = flag.String("resume", "", "resume from this snapshot file; with -f the run branches onto that scenario from the resume round, without it the snapshot's scenario continues")
	)
	flag.Parse()
	if *resume != "" {
		cliutil.RejectResumeOverrides("nylon-scenario",
			"n", "nat", "view", "rounds", "seed", "protocol", "selection", "merge",
			"push", "every", "verify-samples", "trace", "trace-out", "trace-cap",
			"flight", "flight-stall", "flight-stall-below", "flight-eclipse", "flight-cluster", "flight-leak")
		if *adv != "" && *file == "" {
			fatal(fmt.Errorf("-adversary with -resume needs -f: flag cohorts stack onto the branch scenario"))
		}
	} else if *file == "" {
		fatal(fmt.Errorf("-f scenario.json is required (or -resume a snapshot)"))
	}

	var sc *scenario.Scenario
	var err error
	if *file != "" {
		if sc, err = scenario.Load(*file); err != nil {
			fatal(err)
		}
		if *adv != "" {
			// Flag-injected cohorts stack on top of whatever the file declares.
			sc.Adversaries = append(sc.Adversaries, scenario.Adversary{
				Strategy:  *adv,
				Fraction:  *advPct / 100,
				FromRound: *advFrom,
			})
			// On a branch the horizon comes from the snapshot, so validation
			// happens inside Resume instead.
			if *resume == "" {
				if err := sc.Validate(*rounds); err != nil {
					fatal(err)
				}
			}
		}
	}
	sample := *every
	if sample <= 0 {
		sample = *rounds / 20
		if sample < 1 {
			sample = 1
		}
	}
	cfg := exp.Config{
		N:                 *n,
		ViewSize:          *viewSize,
		NATRatio:          *natPct / 100,
		Rounds:            *rounds,
		Seed:              *seed,
		PushPull:          !*push,
		SampleEveryRounds: sample,
		Scenario:          sc,
		Workers:           *workers,
	}
	if cfg.Protocol, err = exp.ParseProtocol(*protocol); err != nil {
		fatal(err)
	}
	if cfg.Selection, err = view.ParseSelection(*selection); err != nil {
		fatal(err)
	}
	if cfg.Merge, err = view.ParseMerge(*merge); err != nil {
		fatal(err)
	}
	cfg.VerifySamples = *verify
	if *traceOn || *traceOut != "" {
		cfg.TraceCapacity = *traceCap
	}
	if *flightDir != "" {
		trig := obs.Triggers{
			StallRounds:  *flightStall,
			StallBelow:   *flightStallLo,
			EclipseAbove: *flightEclipse,
			ClusterBelow: *flightCluster,
			LeakCheck:    *flightLeak,
		}
		if trig.Zero() {
			// An armed recorder with nothing to watch would never fire;
			// default to the stall trigger, the broadest anomaly.
			trig.StallRounds = 10
		}
		cfg.Flight = &obs.FlightSpec{Dir: *flightDir, Triggers: trig}
	}
	var hub *obs.Hub
	if *httpAddr != "" || *metrics || *metricsJS != "" || *progress > 0 || *verify {
		hub = obs.NewHub()
	}
	cfg.Obs = hub
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, hub)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}
	if *progress > 0 {
		stop := obs.StartProgress(os.Stderr, hub, *progress)
		defer stop()
	}

	// A resumed run keeps checkpointing into its snapshot's directory unless
	// -checkpoint redirects it; a signal always checkpoints when a directory
	// is armed.
	ckInto := *ckDir
	if ckInto == "" && *resume != "" {
		ckInto = filepath.Dir(*resume)
	}
	var spec *exp.CheckpointSpec
	if ckInto != "" {
		_, stop := cliutil.NotifyStop(os.Stderr, "nylon-scenario")
		spec = &exp.CheckpointSpec{Dir: ckInto, EveryRounds: *ckEvery, Stop: stop}
	}
	cfg.Checkpoint = spec

	start := time.Now()
	var res exp.Result
	if *resume != "" {
		res, err = exp.ResumeFile(*resume, exp.ResumeOptions{
			Workers:    *workers,
			Scenario:   sc, // nil: continue the snapshot's scenario; non-nil: branch
			Checkpoint: spec,
			Obs:        hub,
		})
	} else {
		res, err = exp.Run(cfg)
	}
	var ie *exp.InterruptedError
	if errors.As(err, &ie) {
		fmt.Fprintf(os.Stderr, "nylon-scenario: interrupted at round %d\n", ie.Round)
		fmt.Fprintf(os.Stderr, "nylon-scenario: resume with: nylon-scenario -resume %s\n", ie.Path)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	// On resume the effective scenario and parameters come from the result's
	// config (the snapshot's, or the branch), not from this process's flags.
	rc := res.Cfg
	scEff := rc.Scenario
	name := ""
	if scEff != nil {
		name = scEff.Name
	}
	if name == "" {
		if *file != "" {
			name = *file
		} else {
			name = *resume
		}
	}
	fmt.Printf("# scenario %q: %s\n", name, describe(scEff))
	fmt.Printf("# %s, %d peers (%.0f%% natted), view %d, %d rounds, seed %d\n",
		rc.Protocol, rc.N, rc.NATRatio*100, rc.ViewSize, rc.Rounds, rc.Seed)
	hostile := len(scEff.AdversaryList()) > 0
	if hostile {
		fmt.Println("round\talive\tcluster%\tstale%\tjoins\tleaves\teclipse%\tcolluder%")
	} else {
		fmt.Println("round\talive\tcluster%\tstale%\tjoins\tleaves")
	}
	for _, pt := range res.Series {
		fmt.Printf("%d\t%d\t%.1f\t%.1f\t%d\t%d",
			pt.Round, pt.AlivePeers, pt.BiggestCluster*100, pt.StaleFraction*100, pt.Joins, pt.Leaves)
		if hostile {
			fmt.Printf("\t%.1f\t%.1f", pt.Eclipse*100, pt.ColluderShare*100)
		}
		fmt.Println()
	}

	fmt.Printf("\nfinal cluster       %.1f%% of %d alive (%d total peers)\n",
		res.BiggestCluster*100, res.AlivePeers, res.TotalPeers)
	fmt.Printf("stale references    %.1f%%\n", res.StaleFraction*100)
	fmt.Printf("worst cluster       %.1f%% at round %d\n", res.Recovery.WorstCluster*100, res.Recovery.WorstRound)
	switch {
	case res.Recovery.RecoveredRound < 0:
		fmt.Printf("recovered           never (threshold %.0f%%)\n", exp.RecoveryThreshold*100)
	case res.Recovery.RecoveredRound > res.Recovery.WorstRound:
		fmt.Printf("recovered           round %d (%d rounds after the worst point)\n",
			res.Recovery.RecoveredRound, res.Recovery.RecoveredRound-res.Recovery.WorstRound)
	default:
		fmt.Printf("recovered           never disrupted below %.0f%%\n", exp.RecoveryThreshold*100)
	}
	fmt.Printf("scenario churn      %d joins, %d leaves, %d gateway groups failed, %d partitioned rounds\n",
		res.Scenario.Joins, res.Scenario.Leaves, res.Scenario.GatewayFailures, res.Scenario.PartitionRounds)
	fmt.Printf("network drops       nat-filtered %d, no-addr %d, dead %d, link-lost %d, partitioned %d\n",
		res.Drops.NATFiltered, res.Drops.NoSuchAddr, res.Drops.DeadPeer, res.Drops.LinkLost, res.Drops.Partitioned)
	fmt.Printf("bytes/s per peer    %.0f (public %.0f, natted %.0f)\n",
		res.BytesPerSecAll, res.BytesPerSecPublic, res.BytesPerSecNatted)
	fmt.Printf("shuffle completion  %.1f%%\n", res.CompletionRate*100)
	if hostile {
		a := res.Adversary
		fmt.Printf("adversaries         %d assigned (%d colluders)\n", a.AdversaryCount, a.ColluderCount)
		fmt.Printf("eclipse             %.1f%% of honest peers fully eclipsed, %.1f%% see ≥1 colluder\n",
			a.EclipseFraction*100, a.ColluderViewFraction*100)
		fmt.Printf("indegree capture    colluders hold %.1f%% of honest references (top-%d hubs hold %.1f%%)\n",
			a.ColluderIndegreeShare*100, max(a.ColluderCount, 1), a.TopKIndegreeShare*100)
		fmt.Printf("honest subgraph     %.1f%% biggest cluster with adversarial peers discounted\n",
			a.HonestCluster*100)
		fmt.Printf("hostile drops       relay-denied %d, selective %d, hop-limit %d\n",
			a.RelayDenied, a.AdversaryDrops, a.HopLimitDrops)
	}
	fmt.Printf("throughput          %s\n", res.ThroughputLine(wall))
	if *metrics {
		fmt.Print(obs.KernelTable(hub))
	}
	if *metricsJS != "" {
		f, err := os.Create(*metricsJS)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteMetricsJSON(f, hub); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSONL(f, res.Trace); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (inspect with nylon-trace)\n", len(res.Trace), *traceOut)
	}
	for _, b := range res.Bundles {
		fmt.Printf("flight bundle       %s\n", b)
	}
}

// describe renders a one-line summary of the scenario's dimensions.
func describe(sc *scenario.Scenario) string {
	if sc == nil {
		// A resumed snapshot of a scenario-less run (e.g. from nylon-sim).
		return "no scenario"
	}
	s := ""
	if c := sc.Churn; c != nil {
		s += fmt.Sprintf("churn λjoin=%.3g λleave=%.3g; ", c.JoinsPerRound, c.LeavesPerRound)
	}
	if l := sc.Link; l != nil {
		s += fmt.Sprintf("link jitter≤%dms loss=%.3g; ", l.JitterMs, l.Loss)
	}
	s += fmt.Sprintf("%d events", len(sc.Events))
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-scenario:", err)
	os.Exit(1)
}
