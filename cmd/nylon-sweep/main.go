// Command nylon-sweep runs a scenario sweep: a declarative JSON spec (see
// internal/sweep) naming a scenario corpus, a seed set, and protocol
// variants expands into a deterministic job grid, executes across a worker
// pool with content-addressed result caching, and aggregates the recovery
// behavior of every (scenario, variant) cell into p10/p50/p90 quantile
// bands.
//
// Example — the committed corpus sweep:
//
//	nylon-sweep -spec examples/scenario-lab/sweep.json -out /tmp/lab
//
// The run directory holds one result file per job plus the aggregated
// artifacts (sweep.json, summary.csv, bands.csv); the text report goes to
// stdout. Runs are resumable: a killed sweep rerun with the same spec and
// flags skips every completed job, and a finished sweep re-aggregates
// without running anything. The artifact is a pure function of (spec,
// scenario files, seeds) — byte-identical however often the sweep was
// interrupted and for any -workers value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/sweep"
)

func main() {
	var (
		specPath = flag.String("spec", "", "sweep spec JSON file (required)")
		out      = flag.String("out", "", "run directory (default sweep-out/<spec name>)")
		workers  = flag.Int("workers", 0, "parallel jobs (0 = one per core; results are identical for any value)")
		seeds    = flag.Int("seeds", 0, "override the spec's seed count with seeds 1..N")
		n        = flag.Int("n", 0, "override the spec's base peer count")
		rounds   = flag.Int("rounds", 0, "override the spec's base round count")
		resume   = flag.Bool("resume", false, "require an existing run directory for this exact spec (fails on a hash mismatch instead of silently starting over)")
		verbose  = flag.Bool("v", false, "log each executed job with progress (done/total, jobs/s, ETA)")
		httpAddr = flag.String("http", "", "serve the live ops endpoint (/metrics, /debug/vars, /debug/pprof) on this address")
		ckEvery  = flag.Int("checkpoint-every", 0, "checkpoint every running job's world every N rounds into <run dir>/snapshots/; an interrupted sweep then resumes each unfinished job mid-run instead of from round zero (0 = off)")
	)
	flag.Parse()
	if *specPath == "" {
		fatal(fmt.Errorf("-spec sweep.json is required"))
	}

	spec, err := sweep.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	if *seeds > 0 {
		spec.Seeds, spec.SeedList = *seeds, nil
	}
	if *n > 0 {
		spec.Base.N = *n
	}
	if *rounds > 0 {
		spec.Base.Rounds = *rounds
	}

	grid, err := sweep.Expand(spec, filepath.Dir(*specPath))
	if err != nil {
		fatal(err)
	}

	dir := *out
	if dir == "" {
		name := spec.Name
		if name == "" {
			name = "sweep"
		}
		dir = filepath.Join("sweep-out", name)
	}
	markerPath := filepath.Join(dir, "spec.hash")
	if *resume {
		prev, err := os.ReadFile(markerPath)
		if err != nil {
			fatal(fmt.Errorf("-resume: no resumable run in %s (%w)", dir, err))
		}
		if string(prev) != grid.SpecHash {
			fatal(fmt.Errorf("-resume: %s was produced by a different spec (hash %.12s…, want %.12s…)",
				dir, prev, grid.SpecHash))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(markerPath, []byte(grid.SpecHash), 0o644); err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the same context that StopAfter-style shutdown
	// uses inside Execute: dequeuing stops, and with -checkpoint-every armed
	// every in-flight job snapshots at its next round barrier before exiting.
	ctx, _ := cliutil.NotifyStop(os.Stderr, "nylon-sweep")
	opts := sweep.Options{Workers: *workers, Ctx: ctx, CheckpointEveryRounds: *ckEvery}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *httpAddr != "" {
		opts.Obs = obs.NewHub()
		srv, err := obs.Serve(*httpAddr, opts.Obs)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}
	start := time.Now()
	results, stats, err := sweep.Execute(grid, dir, opts)
	if errors.Is(err, sweep.ErrStopped) {
		fmt.Fprintf(os.Stderr, "nylon-sweep: stopped (%s); rerun the same command to resume\n", stats)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	art, err := sweep.Aggregate(grid, results)
	if err != nil {
		fatal(err)
	}
	artJSON, err := art.JSON()
	if err != nil {
		fatal(err)
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"sweep.json", artJSON},
		{"summary.csv", []byte(art.SummaryCSV())},
		{"bands.csv", []byte(art.BandsCSV())},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("# sweep %q: %d scenarios × %d variants × %d seeds (spec %.12s…)\n",
		spec.Name, len(grid.Scenarios), len(spec.Variants), len(grid.Seeds), grid.SpecHash)
	fmt.Printf("# %s in %v (%d workers) → %s\n\n", stats, wall.Round(time.Millisecond), stats.Workers, dir)
	fmt.Print(art.Text())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-sweep:", err)
	os.Exit(1)
}
