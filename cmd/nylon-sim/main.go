// Command nylon-sim runs a single simulation point and prints every metric
// the harness measures. It is the exploratory companion to nylon-figs.
//
// Example — the paper's headline setting (10,000 peers, 90% natted):
//
//	nylon-sim -n 10000 -nat 90 -rounds 600 -protocol nylon
//
// Compare with the NAT-oblivious baseline:
//
//	nylon-sim -n 10000 -nat 90 -rounds 600 -protocol generic -mix prc
//
// Long runs survive crashes and interruptions: -checkpoint DIR snapshots the
// complete world state into DIR (every -checkpoint-every rounds, and at the
// next round barrier after SIGINT/SIGTERM), and -resume FILE continues a run
// from such a snapshot, bit-identical to never having stopped:
//
//	nylon-sim -n 100000 -rounds 600 -checkpoint /tmp/ck -checkpoint-every 50
//	^C
//	nylon-sim -resume /tmp/ck/round-00000150.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/view"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of peers")
		natPct    = flag.Float64("nat", 80, "percentage of natted peers")
		viewSize  = flag.Int("view", 15, "view size")
		rounds    = flag.Int("rounds", 300, "shuffling rounds")
		seed      = flag.Int64("seed", 1, "random seed")
		protocol  = flag.String("protocol", "nylon", "protocol: nylon, generic, arrg, static-rvp")
		selection = flag.String("selection", "rand", "target selection: rand, tail")
		merge     = flag.String("merge", "healer", "view merge: blind, healer, swapper")
		push      = flag.Bool("push", false, "push-only propagation (default push/pull)")
		mix       = flag.String("mix", "paper", "NAT mix: paper (50/40/10 rc/prc/sym) or prc")
		churnAt   = flag.Int("churn-at", 0, "round at which churn strikes (0 = none)")
		churnPct  = flag.Float64("churn", 0, "percentage of peers departing at churn-at")
		traceOn   = flag.Bool("trace", false, "record network events (sends, deliveries, drops) in per-shard rings; tracing never perturbs the run")
		traceOut  = flag.String("trace-out", "", "write the merged trace to this file as JSON lines (implies -trace; inspect with nylon-trace)")
		traceCap  = flag.Int("trace-cap", 4096, "trace ring capacity: keep the last N events per shard")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (results are identical for any value)")
		shards    = flag.Int("shards", 0, "simulation shards (0 = default; results are identical for any value)")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the run to this file (pprof format)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
		httpAddr  = flag.String("http", "", "serve the live ops endpoint (/metrics, /debug/vars, /debug/pprof) on this address, e.g. :8080")
		metrics   = flag.Bool("metrics", false, "print the kernel phase-timing and overlay-health table at the end of the run")
		metricsJS = flag.String("metrics-json", "", "write the full metrics document (registry, kernel, health) to this file as JSON")
		progress  = flag.Duration("progress", 0, "print a progress line to stderr at this interval (e.g. 10s; 0 = off)")
		ckDir     = flag.String("checkpoint", "", "write crash-survivable world snapshots into this directory; SIGINT/SIGTERM checkpoints at the next round barrier and exits")
		ckEvery   = flag.Int("checkpoint-every", 0, "with -checkpoint, also snapshot every N rounds (0 = only on signal)")
		resume    = flag.String("resume", "", "resume from this snapshot file; the snapshot fixes the experiment parameters, so only execution flags (-workers, -shards, -checkpoint…, observability) may be combined with it")
	)
	flag.Parse()
	if *resume != "" {
		cliutil.RejectResumeOverrides("nylon-sim",
			"n", "nat", "view", "rounds", "seed", "protocol", "selection", "merge",
			"push", "mix", "churn-at", "churn", "trace", "trace-out", "trace-cap")
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := exp.Config{
		N:             *n,
		ViewSize:      *viewSize,
		NATRatio:      *natPct / 100,
		Rounds:        *rounds,
		Seed:          *seed,
		PushPull:      !*push,
		ChurnAtRound:  *churnAt,
		ChurnFraction: *churnPct / 100,
		Workers:       *workers,
		Shards:        *shards,
	}
	if *traceOn || *traceOut != "" {
		cfg.TraceCapacity = *traceCap
	}
	var err error
	if cfg.Selection, err = view.ParseSelection(*selection); err != nil {
		fatal(err)
	}
	if cfg.Merge, err = view.ParseMerge(*merge); err != nil {
		fatal(err)
	}
	if cfg.Protocol, err = exp.ParseProtocol(*protocol); err != nil {
		fatal(err)
	}
	switch *mix {
	case "paper":
		cfg.Mix = exp.DefaultMix
	case "prc":
		cfg.Mix = exp.NATMix{PRC: 1}
	default:
		fatal(fmt.Errorf("unknown mix %q", *mix))
	}

	var hub *obs.Hub
	if *httpAddr != "" || *metrics || *metricsJS != "" || *progress > 0 {
		hub = obs.NewHub()
	}
	cfg.Obs = hub
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, hub)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}
	if *progress > 0 {
		stop := obs.StartProgress(os.Stderr, hub, *progress)
		defer stop()
	}

	// A resumed run keeps checkpointing into its snapshot's directory unless
	// -checkpoint redirects it; a signal always checkpoints when a directory
	// is armed.
	ckInto := *ckDir
	if ckInto == "" && *resume != "" {
		ckInto = filepath.Dir(*resume)
	}
	var spec *exp.CheckpointSpec
	if ckInto != "" {
		_, stop := cliutil.NotifyStop(os.Stderr, "nylon-sim")
		spec = &exp.CheckpointSpec{Dir: ckInto, EveryRounds: *ckEvery, Stop: stop}
	}
	cfg.Checkpoint = spec

	start := time.Now()
	var res exp.Result
	var err2 error
	if *resume != "" {
		res, err2 = exp.ResumeFile(*resume, exp.ResumeOptions{
			Workers:    *workers,
			Shards:     *shards,
			Checkpoint: spec,
			Obs:        hub,
		})
	} else {
		res, err2 = exp.Run(cfg)
	}
	var ie *exp.InterruptedError
	if errors.As(err2, &ie) {
		fmt.Fprintf(os.Stderr, "nylon-sim: interrupted at round %d\n", ie.Round)
		fmt.Fprintf(os.Stderr, "nylon-sim: resume with: nylon-sim -resume %s\n", ie.Path)
		os.Exit(130)
	}
	if err2 != nil {
		fatal(err2)
	}
	wall := time.Since(start)
	rc := res.Cfg // on resume this is the snapshot's config, not the flags'
	fmt.Printf("protocol            %v (%v, %v, push/pull=%v)\n", rc.Protocol, rc.Selection, rc.Merge, rc.PushPull)
	fmt.Printf("peers               %d (%.0f%% natted), view %d, %d rounds, seed %d\n",
		rc.N, rc.NATRatio*100, rc.ViewSize, rc.Rounds, rc.Seed)
	fmt.Printf("biggest cluster     %.1f%%\n", res.BiggestCluster*100)
	fmt.Printf("stale references    %.1f%%\n", res.StaleFraction*100)
	fmt.Printf("natted non-stale    %.1f%% (population share %.1f%%)\n", res.NattedNonStale*100, rc.NATRatio*100)
	fmt.Printf("bytes/s per peer    %.0f (public %.0f, natted %.0f)\n", res.BytesPerSecAll, res.BytesPerSecPublic, res.BytesPerSecNatted)
	fmt.Printf("avg RVP chain       %.2f\n", res.AvgChainLen)
	fmt.Printf("shuffle completion  %.1f%% (no-route %.1f%%)\n", res.CompletionRate*100, res.NoRouteRate*100)
	fmt.Printf("chi2/dof (stream)   %.2f (uniform at 1%%: %v)\n", res.ChiSquareStat, res.ChiSquareOK)
	fmt.Printf("in-degree           mean %.1f, sd %.1f, p50 %d, p99 %d\n",
		res.InDegree.Mean, res.InDegree.StdDev, res.InDegree.P50, res.InDegree.P99)
	fmt.Printf("alive peers         %d\n", res.AlivePeers)
	fmt.Printf("network drops       nat-filtered %d, no-addr %d, dead %d\n",
		res.Drops.NATFiltered, res.Drops.NoSuchAddr, res.Drops.DeadPeer)
	fmt.Printf("throughput          %s\n", res.ThroughputLine(wall))
	if *metrics {
		fmt.Print(obs.KernelTable(hub))
	}
	if *metricsJS != "" {
		f, err := os.Create(*metricsJS)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteMetricsJSON(f, hub); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSONL(f, res.Trace); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (inspect with nylon-trace)\n", len(res.Trace), *traceOut)
	} else if res.TraceDump != "" {
		fmt.Printf("--- last %d network events ---\n%s", len(res.Trace), res.TraceDump)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// One final collection so the profile reflects the run's
		// allocations, not a mid-GC snapshot.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		fmt.Printf("allocation profile      %s (inspect: go tool pprof -top -alloc_space %s)\n", *memProf, *memProf)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-sim:", err)
	os.Exit(1)
}
