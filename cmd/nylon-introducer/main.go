// Command nylon-introducer runs the bootstrap service live nodes join
// through: it tells joiners their public mapping and NAT class (STUN-style
// probes), hands them seed peers, and coordinates the first hole punches.
//
//	nylon-introducer -listen :3478 -alt-port :3479
//
// Full NAT classification additionally needs a second IP:
//
//	nylon-introducer -listen 192.0.2.10:3478 -alt-port 192.0.2.10:3479 \
//	                 -alt-ip 192.0.2.11:3478
//
// Then join from a node:
//
//	nylon-node -id 7 -listen :9000 -join 192.0.2.10:3478
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	nylon "repro"
	"repro/internal/obs"
)

func main() {
	var (
		listen   = flag.String("listen", ":3478", "primary UDP listen address")
		altPort  = flag.String("alt-port", "", "alternate-port UDP address (same IP; enables RC/PRC discrimination)")
		altIP    = flag.String("alt-ip", "", "alternate-IP UDP address (enables FC detection)")
		seeds    = flag.Int("seeds", 8, "seeds handed to each joiner")
		ttl      = flag.Duration("member-ttl", 90*time.Second, "member seed eligibility window")
		httpAddr = flag.String("http", "", "serve the live ops endpoint (/metrics, /debug/pprof) on this address")
	)
	flag.Parse()

	cfg := nylon.IntroducerConfig{MaxSeeds: *seeds, MemberTTL: *ttl}
	primary, err := nylon.ListenUDP(*listen)
	if err != nil {
		fatal(err)
	}
	defer primary.Close()
	cfg.Primary = primary
	if *altPort != "" {
		tr, err := nylon.ListenUDP(*altPort)
		if err != nil {
			fatal(err)
		}
		defer tr.Close()
		cfg.AltPort = tr
	}
	if *altIP != "" {
		tr, err := nylon.ListenUDP(*altIP)
		if err != nil {
			fatal(err)
		}
		defer tr.Close()
		cfg.AltIP = tr
	}

	in := nylon.NewIntroducer(cfg)
	defer in.Close()
	fmt.Printf("nylon-introducer listening on %v (alt-port %q, alt-ip %q)\n", primary.LocalAddr(), *altPort, *altIP)

	var gMembers *obs.Gauge
	if *httpAddr != "" {
		hub := obs.NewHub()
		gMembers = hub.EnsureRegistry().Gauge("nylon_introducer_members", "currently registered members")
		srv, err := obs.Serve(*httpAddr, hub)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops endpoint listening on http://%s\n", srv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m := in.Members()
			if gMembers != nil {
				gMembers.Set(float64(m))
			}
			fmt.Printf("[%s] %d registered members\n", time.Now().Format(time.TimeOnly), m)
		case <-sig:
			fmt.Println("shutting down")
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-introducer:", err)
	os.Exit(1)
}
