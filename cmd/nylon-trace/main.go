// Command nylon-trace queries recorded network traces: the JSON-lines files
// written by nylon-sim/nylon-scenario -trace-out and the forensic bundles
// frozen by the flight recorder (-flight). It filters by peer, op, wire kind
// and virtual-time window, reconstructs causal forwarding chains
// (-follow), and condenses a trace into per-op and per-shard drop tables
// (-summary).
//
// Examples:
//
//	nylon-scenario -f storm.json -trace-out run.trace
//	nylon-trace -summary run.trace
//	nylon-trace -op drop-nat -peer n7 run.trace
//	nylon-trace -follow n3 bundles/bundle-eclipse-r0042.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	var (
		opName  = flag.String("op", "", "keep only events of this op: send, deliver, drop-nat, drop-addr, drop-dead, drop-link, drop-partition")
		peer    = flag.String("peer", "", "keep only events whose origin or destination is this peer (e.g. n7)")
		kind    = flag.String("kind", "", "keep only this wire kind: REQUEST, RESPONSE, OPEN_HOLE, PING, PONG")
		fromMs  = flag.Int64("from", -1, "keep only events at or after this virtual time (ms)")
		toMs    = flag.Int64("to", -1, "keep only events at or before this virtual time (ms)")
		follow  = flag.String("follow", "", "reconstruct causal chains: an origin peer (n3) or one chain (n3:17); prints each chain hop by hop with its verification status")
		summary = flag.Bool("summary", false, "print per-op totals and the per-shard drop table instead of events")
		shards  = flag.Int("shards", 0, "shard count for -summary's per-shard table on raw traces (bundles carry it)")
		limit   = flag.Int("n", 0, "print at most the last N matching events (0 = all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: nylon-trace [flags] FILE\n\nFILE is a JSON-lines trace (-trace-out) or a flight-recorder bundle.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	events, bundle, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if bundle != nil {
		fmt.Printf("# bundle %s: trigger %s at round %d (%s)\n",
			bundle.Schema, bundle.Trigger.Name, bundle.Trigger.Round, bundle.Trigger.Detail)
		fmt.Printf("# run: %s n=%d seed=%d shards=%d workers=%d\n",
			bundle.Run.Protocol, bundle.Run.N, bundle.Run.Seed, bundle.Run.Shards, bundle.Run.Workers)
		if *shards == 0 {
			*shards = bundle.Run.Shards
		}
	}

	if *follow != "" {
		if err := doFollow(events, *follow); err != nil {
			fatal(err)
		}
		return
	}

	events, err = filter(events, *opName, *peer, *kind, *fromMs, *toMs)
	if err != nil {
		fatal(err)
	}
	if *summary {
		doSummary(events, *shards, bundle)
		return
	}
	if *limit > 0 && len(events) > *limit {
		events = events[len(events)-*limit:]
	}
	for _, e := range events {
		fmt.Println(e)
	}
}

// load reads a trace file: a flight bundle (single JSON document carrying
// the schema marker) or a raw JSON-lines event stream.
func load(path string) ([]trace.Event, *obs.Bundle, error) {
	if b, err := obs.ReadBundle(path); err == nil {
		return b.Trace, b, nil
	} else if os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: not a flight bundle and not a JSON-lines trace: %w", path, err)
	}
	return events, nil, nil
}

func filter(events []trace.Event, opName, peer, kind string, fromMs, toMs int64) ([]trace.Event, error) {
	keepOp := trace.Op(0)
	if opName != "" {
		op, err := trace.ParseOp(opName)
		if err != nil {
			return nil, err
		}
		keepOp = op
	}
	var keepPeer ident.NodeID
	if peer != "" {
		id, err := parsePeer(peer)
		if err != nil {
			return nil, err
		}
		keepPeer = id
	}
	var keepKind uint8
	if kind != "" {
		k, err := parseKind(kind)
		if err != nil {
			return nil, err
		}
		keepKind = uint8(k)
	}
	out := events[:0:0]
	for _, e := range events {
		if keepOp != 0 && e.Op != keepOp {
			continue
		}
		if keepPeer != 0 && e.Src != keepPeer && e.Dst != keepPeer {
			continue
		}
		if keepKind != 0 && e.Kind != keepKind {
			continue
		}
		if fromMs >= 0 && e.At < fromMs {
			continue
		}
		if toMs >= 0 && e.At > toMs {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// doFollow prints the causal chains matching spec: every chain originating
// at a peer ("n3"), or one chain ("n3:17").
func doFollow(events []trace.Event, spec string) error {
	var wantSeq uint32
	peerSpec := spec
	if i := strings.LastIndexByte(spec, ':'); i > 0 {
		seq, err := strconv.ParseUint(spec[i+1:], 10, 32)
		if err != nil {
			return fmt.Errorf("bad -follow %q: %v", spec, err)
		}
		wantSeq = uint32(seq)
		peerSpec = spec[:i]
	}
	origin, err := parsePeer(peerSpec)
	if err != nil {
		return err
	}
	order, byID := trace.Chains(events)
	matched := 0
	for _, id := range order {
		if id.Origin != origin || (wantSeq != 0 && id.Seq != wantSeq) {
			continue
		}
		matched++
		chain := byID[id]
		headSurvived, verr := trace.VerifyChain(chain)
		fmt.Printf("chain %v  path=%016x  %d events\n", id, chain[len(chain)-1].Path, len(chain))
		for _, e := range chain {
			fmt.Printf("  %v\n", e)
		}
		switch {
		case verr != nil:
			fmt.Printf("  !! inconsistent: %v\n", verr)
		case !headSurvived:
			fmt.Printf("  .. truncated: origin send evicted from the ring\n")
		}
	}
	if matched == 0 {
		fmt.Printf("no chains originating at %v in %d events\n", origin, len(events))
	}
	return nil
}

// doSummary condenses a trace: per-op totals, per-kind traffic, and the
// per-shard drop table (shard derived from the destination peer).
func doSummary(events []trace.Event, shards int, bundle *obs.Bundle) {
	if len(events) == 0 {
		fmt.Println("no events")
		return
	}
	fmt.Printf("%d events, virtual time %dms..%dms\n", len(events), events[0].At, events[len(events)-1].At)

	opTotals := make(map[trace.Op]int)
	kindTotals := make(map[uint8]int)
	for _, e := range events {
		opTotals[e.Op]++
		kindTotals[e.Kind]++
	}
	fmt.Println("\nper-op totals")
	for op := trace.OpSend; int(op) < trace.NumOps(); op++ {
		if n := opTotals[op]; n > 0 {
			fmt.Printf("  %-15s %8d\n", op, n)
		}
	}
	fmt.Println("\nper-kind totals")
	kinds := make([]int, 0, len(kindTotals))
	for k := range kindTotals {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-15v %8d\n", wire.Kind(k), kindTotals[uint8(k)])
	}

	if shards > 0 {
		fmt.Println("\nper-shard drops (by destination shard)")
		table := make([][trace.NumDropCauses]int, shards)
		any := false
		for _, e := range events {
			if c, ok := trace.DropCauseOf(e.Op); ok && e.Dst != 0 {
				table[int(uint64(e.Dst-1)%uint64(shards))][c]++
				any = true
			}
		}
		if !any {
			fmt.Println("  no drops in trace")
		} else {
			fmt.Printf("  %-7s", "shard")
			for c := 0; c < int(trace.NumDropCauses); c++ {
				fmt.Printf(" %14s", trace.DropCauses[c].OpName)
			}
			fmt.Println()
			for i, row := range table {
				fmt.Printf("  %-7d", i)
				for _, n := range row {
					fmt.Printf(" %14d", n)
				}
				fmt.Println()
			}
		}
	} else {
		fmt.Println("\n(per-shard drop table skipped: pass -shards for raw traces)")
	}

	if bundle != nil && len(bundle.Drops) > 0 {
		fmt.Println("\nrun-total drop counters (bundle)")
		names := make([]string, 0, len(bundle.Drops))
		for name := range bundle.Drops {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-32s %8d\n", name, bundle.Drops[name])
		}
	}
}

func parsePeer(s string) (ident.NodeID, error) {
	v := strings.TrimPrefix(s, "n")
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("bad peer %q (want n<id>)", s)
	}
	return ident.NodeID(id), nil
}

func parseKind(s string) (wire.Kind, error) {
	for k := wire.KindRequest; k <= wire.KindPong; k++ {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("bad kind %q (want REQUEST, RESPONSE, OPEN_HOLE, PING or PONG)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nylon-trace:", err)
	os.Exit(1)
}
